package topology

import (
	"container/heap"
	"fmt"
	"math"

	"mstc/internal/geom"
)

// WeakProtocol selects logical neighbors from a weakly consistent view
// using the paper's *enhanced link-removal conditions* (§4.2): a link is
// removed only when even its most optimistic cost (cMin) exceeds the most
// pessimistic cost (cMax) of some replacement path. Theorem 4 proves the
// resulting logical topology connected whenever views are weakly
// consistent (Definition 2).
type WeakProtocol interface {
	// Name returns the protocol name with a "w" prefix ("wRNG", ...).
	Name() string
	// SelectWeak returns the ids of v.Self's logical neighbors, in
	// ascending order.
	SelectWeak(v MultiView) []int
}

// WeakRNG applies enhanced removal condition 1: remove (u, v) iff some
// witness w has cMin(u,v) > max(cMax(u,w), cMax(w,v)).
type WeakRNG struct{}

// Name implements WeakProtocol.
func (WeakRNG) Name() string { return "wRNG" }

// SelectWeak implements WeakProtocol.
func (w WeakRNG) SelectWeak(v MultiView) []int {
	return w.SelectWeakInto(v, make([]int, 0, 4), &Scratch{})
}

// SelectWeakInto implements WeakScratchSelector.
//manet:noalloc
func (WeakRNG) SelectWeakInto(v MultiView, dst []int, _ *Scratch) []int {
	start := len(dst)
	for _, n := range v.Neighbors {
		cMinUV, _ := CostRange(v.Self.Positions, n.Positions, DistanceCost)
		removed := false
		for _, w := range v.Neighbors {
			if w.ID == n.ID {
				continue
			}
			_, cMaxUW := CostRange(v.Self.Positions, w.Positions, DistanceCost)
			_, cMaxWV := CostRange(w.Positions, n.Positions, DistanceCost)
			if cMinUV > math.Max(cMaxUW, cMaxWV) {
				removed = true
				break
			}
		}
		if !removed {
			dst = append(dst, n.ID)
		}
	}
	sortInts(dst[start:])
	return dst
}

// WeakMST applies enhanced removal condition 3: remove (u, v) iff the view
// contains a relay path every edge of which has cMax below cMin(u,v) —
// i.e. the minimax (bottleneck) path cost from u to v is below cMin(u,v).
type WeakMST struct {
	// Range is the normal transmission range; a view edge is usable by a
	// relay path only when even its maximal cost keeps it within Range
	// (the conservative existence test).
	Range float64
}

// Name implements WeakProtocol.
func (WeakMST) Name() string { return "wMST" }

// SelectWeak implements WeakProtocol.
func (m WeakMST) SelectWeak(v MultiView) []int {
	return m.SelectWeakInto(v, make([]int, 0, 4), &Scratch{})
}

// SelectWeakInto implements WeakScratchSelector.
//manet:noalloc
func (m WeakMST) SelectWeakInto(v MultiView, dst []int, s *Scratch) []int {
	selfIdx := s.multiViewNodes(v)
	s.fillWeakMatrix(m.Range, DistanceCost)
	bottleneck := s.denseMinimax(len(s.pos), selfIdx)
	start := len(dst)
	for i, n := range v.Neighbors {
		idx := i
		if i >= selfIdx {
			idx = i + 1
		}
		cMinUV, _ := CostRange(v.Self.Positions, n.Positions, DistanceCost)
		if !(cMinUV > bottleneck[idx]) {
			dst = append(dst, n.ID)
		}
	}
	sortInts(dst[start:])
	return dst
}

// WeakSPT applies enhanced removal condition 2: remove (u, v) iff the view
// contains a relay path whose summed cMax energy cost is below cMin(u,v).
type WeakSPT struct {
	// Alpha and Fixed parameterize the energy cost d^Alpha + Fixed.
	Alpha float64
	Fixed float64
	// Range is the normal transmission range bounding usable relay edges.
	Range float64
}

// Name implements WeakProtocol.
func (s WeakSPT) Name() string {
	if s.Alpha == float64(int(s.Alpha)) { //lint:ignore float-eq exact integrality test for display names only
		return fmt.Sprintf("wSPT-%d", int(s.Alpha))
	}
	return fmt.Sprintf("wSPT-%g", s.Alpha)
}

// SelectWeak implements WeakProtocol.
func (s WeakSPT) SelectWeak(v MultiView) []int {
	return s.SelectWeakInto(v, make([]int, 0, 4), &Scratch{})
}

// SelectWeakInto implements WeakScratchSelector.
//manet:noalloc
func (sp WeakSPT) SelectWeakInto(v MultiView, dst []int, s *Scratch) []int {
	if sp.Alpha < 1 {
		panic(fmt.Sprintf("topology: EnergyCost alpha %g < 1", sp.Alpha))
	}
	//lint:ignore noalloc the closure captures only sp (by value) and does not escape fillWeakMatrix, so it stays on the stack; the conformance test pins zero allocs
	cost := func(d float64) float64 { return math.Pow(d, sp.Alpha) + sp.Fixed }
	selfIdx := s.multiViewNodes(v)
	s.fillWeakMatrix(sp.Range, cost)
	dist := s.denseShortest(len(s.pos), selfIdx)
	start := len(dst)
	for i, n := range v.Neighbors {
		idx := i
		if i >= selfIdx {
			idx = i + 1
		}
		cMinUV, _ := CostRange(v.Self.Positions, n.Positions, cost)
		if !(cMinUV > dist[idx]) {
			dst = append(dst, n.ID)
		}
	}
	sortInts(dst[start:])
	return dst
}

// multiViewNodes lays the view's position sets out in ascending real-id
// order (Self inserted at its id rank), mirroring newMultiGraph's entry
// order so neighbor i sits at index i (i < selfIdx) or i+1. It returns
// Self's index.
func (s *Scratch) multiViewNodes(v MultiView) (selfIdx int) {
	n := len(v.Neighbors) + 1
	s.pos = grown(s.pos, n)[:0]
	selfIdx = -1
	for _, nb := range v.Neighbors {
		if selfIdx == -1 && v.Self.ID < nb.ID {
			selfIdx = len(s.pos)
			s.pos = append(s.pos, v.Self.Positions)
		}
		s.pos = append(s.pos, nb.Positions)
	}
	if selfIdx == -1 {
		selfIdx = len(s.pos)
		s.pos = append(s.pos, v.Self.Positions)
	}
	return selfIdx
}

// fillWeakMatrix fills the scratch dense matrix with the pessimistic (cMax)
// pairwise costs over s.pos, +Inf where even the maximal cost cannot
// certify the link exists — the same weights newMultiGraph builds.
func (s *Scratch) fillWeakMatrix(maxRange float64, fn CostFn) {
	n := len(s.pos)
	s.w = grown(s.w, n*n)
	limit := math.Inf(1)
	if maxRange > 0 && !math.IsInf(maxRange, 1) {
		limit = fn(maxRange)
	}
	for i := 0; i < n; i++ {
		s.w[i*n+i] = 0
		for j := i + 1; j < n; j++ {
			_, cMax := CostRange(s.pos[i], s.pos[j], fn)
			if cMax > limit {
				cMax = math.Inf(1)
			}
			s.w[i*n+j] = cMax
			s.w[j*n+i] = cMax
		}
	}
}

// denseMinimax is minimaxFromSelf over the scratch matrix: the relaxation
// and the heap's (key, node) total order are identical, so it pops the same
// node sequence and returns bit-identical keys.
func (s *Scratch) denseMinimax(n, src int) []float64 {
	s.dist = grown(s.dist, n)
	s.done = grown(s.done, n)
	for i := 0; i < n; i++ {
		s.dist[i] = math.Inf(1)
		s.done[i] = false
	}
	s.dist[src] = 0
	s.heap = s.heap[:0]
	s.heap.push(nodeKey{key: 0, node: int32(src)})
	for len(s.heap) > 0 {
		it := s.heap.pop()
		u := int(it.node)
		if s.done[u] {
			continue
		}
		s.done[u] = true
		row := s.w[u*n : u*n+n]
		for v := 0; v < n; v++ {
			if v == u || s.done[v] {
				continue
			}
			nk := math.Max(s.dist[u], row[v])
			if nk < s.dist[v] {
				s.dist[v] = nk
				s.heap.push(nodeKey{key: nk, node: int32(v)})
			}
		}
	}
	return s.dist
}

// denseShortest is shortestFromSelf over the scratch matrix, with the same
// +Inf-edge skip and strict-improvement relaxation.
func (s *Scratch) denseShortest(n, src int) []float64 {
	s.dist = grown(s.dist, n)
	s.done = grown(s.done, n)
	for i := 0; i < n; i++ {
		s.dist[i] = math.Inf(1)
		s.done[i] = false
	}
	s.dist[src] = 0
	s.heap = s.heap[:0]
	s.heap.push(nodeKey{key: 0, node: int32(src)})
	for len(s.heap) > 0 {
		it := s.heap.pop()
		u := int(it.node)
		if s.done[u] {
			continue
		}
		s.done[u] = true
		row := s.w[u*n : u*n+n]
		for v := 0; v < n; v++ {
			if v == u || s.done[v] || math.IsInf(row[v], 1) {
				continue
			}
			if nd := s.dist[u] + row[v]; nd < s.dist[v] {
				s.dist[v] = nd
				s.heap.push(nodeKey{key: nd, node: int32(v)})
			}
		}
	}
	return s.dist
}

// multiGraph is the dense pessimistic-cost graph over a MultiView: nodes in
// ascending id order, edge weight = cMax, edges restricted to pairs whose
// cMax certifies the link exists (cMax <= fn(Range)). It is the reference
// implementation the scratch kernels above are tested against.
type multiGraph struct {
	ids     []int
	idx     map[int]int
	selfIdx int
	w       [][]float64 // cMax, +Inf if unusable
}

func newMultiGraph(v MultiView, maxRange float64, fn CostFn) *multiGraph {
	n := len(v.Neighbors) + 1
	type entry struct {
		id  int
		pos []geom.Point
	}
	entries := make([]entry, 0, n)
	placed := false
	for _, nb := range v.Neighbors {
		if !placed && v.Self.ID < nb.ID {
			entries = append(entries, entry{v.Self.ID, v.Self.Positions})
			placed = true
		}
		entries = append(entries, entry{nb.ID, nb.Positions})
	}
	if !placed {
		entries = append(entries, entry{v.Self.ID, v.Self.Positions})
	}
	mg := &multiGraph{
		ids: make([]int, n),
		idx: make(map[int]int, n),
		w:   make([][]float64, n),
	}
	limit := math.Inf(1)
	if maxRange > 0 && !math.IsInf(maxRange, 1) {
		limit = fn(maxRange)
	}
	for i, e := range entries {
		mg.ids[i] = e.id
		mg.idx[e.id] = i
		if e.id == v.Self.ID {
			mg.selfIdx = i
		}
		mg.w[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		mg.w[i][i] = 0
		for j := i + 1; j < n; j++ {
			_, cMax := CostRange(entries[i].pos, entries[j].pos, fn)
			if cMax > limit {
				cMax = math.Inf(1)
			}
			mg.w[i][j] = cMax
			mg.w[j][i] = cMax
		}
	}
	return mg
}

// minimaxFromSelf returns, per node index, the minimal over paths from self
// of the maximal edge weight along the path (bottleneck shortest path).
func (mg *multiGraph) minimaxFromSelf() []float64 {
	n := len(mg.ids)
	key := make([]float64, n)
	done := make([]bool, n)
	for i := range key {
		key[i] = math.Inf(1)
	}
	key[mg.selfIdx] = 0
	pq := &f64Heap{{node: mg.selfIdx, key: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(f64Item)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for v := 0; v < n; v++ {
			if v == u || done[v] {
				continue
			}
			nk := math.Max(key[u], mg.w[u][v])
			if nk < key[v] {
				key[v] = nk
				heap.Push(pq, f64Item{node: v, key: nk})
			}
		}
	}
	return key
}

// shortestFromSelf returns additive shortest-path distances from self over
// the pessimistic weights.
func (mg *multiGraph) shortestFromSelf() []float64 {
	n := len(mg.ids)
	dist := make([]float64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[mg.selfIdx] = 0
	pq := &f64Heap{{node: mg.selfIdx, key: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(f64Item)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for v := 0; v < n; v++ {
			if v == u || done[v] || math.IsInf(mg.w[u][v], 1) {
				continue
			}
			if nd := dist[u] + mg.w[u][v]; nd < dist[v] {
				dist[v] = nd
				heap.Push(pq, f64Item{node: v, key: nd})
			}
		}
	}
	return dist
}

type f64Item struct {
	node int
	key  float64
}

type f64Heap []f64Item

func (h f64Heap) Len() int { return len(h) }
func (h f64Heap) Less(i, j int) bool {
	if h[i].key != h[j].key { //lint:ignore float-eq exact compare keeps the heap's total order deterministic
		return h[i].key < h[j].key
	}
	return h[i].node < h[j].node
}
func (h f64Heap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *f64Heap) Push(x any)   { *h = append(*h, x.(f64Item)) }
func (h *f64Heap) Pop() any     { old := *h; n := len(old); it := old[n-1]; *h = old[:n-1]; return it }
