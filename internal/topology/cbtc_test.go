package topology

import (
	"math"
	"reflect"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/graph"
)

// logicalOR builds the logical topology keeping unidirectional links
// (a link survives if either endpoint selected it) — the semantics under
// which CBTC with alpha <= 5π/6 preserves connectivity.
func logicalOR(pts []geom.Point, p Protocol, r float64) *graph.Undirected {
	n := len(pts)
	g := graph.NewUndirected(n)
	for u := 0; u < n; u++ {
		for _, v := range p.Select(viewOf(pts, u, r)) {
			if v != u && !g.HasEdge(u, v) {
				g.AddEdge(u, v, pts[u].Dist(pts[v]))
			}
		}
	}
	return g
}

func TestCBTCSelectsNearestCoverage(t *testing.T) {
	// Four near neighbors at right angles cover every 2π/3 cone (maximal
	// gap 90° <= 120°); the farther fifth node must not be selected.
	pts := []geom.Point{
		geom.Pt(0, 0),
		geom.Pt(10, 0),
		geom.Pt(0, 11),
		geom.Pt(-12, 0),
		geom.Pt(0, -13),
		geom.Pt(50, 50), // farther, direction already covered
	}
	got := (CBTC{Alpha: 2 * math.Pi / 3}).Select(viewOf(pts, 0, 1000))
	want := []int{1, 2, 3, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CBTC select = %v, want %v", got, want)
	}
	// The first three alone leave a >120° gap toward -y, so selection
	// cannot stop earlier; with alpha = 3π/2 it does stop at two.
	got = (CBTC{Alpha: 3 * math.Pi / 2}).Select(viewOf(pts, 0, 1000))
	want = []int{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("CBTC(3π/2) select = %v, want %v", got, want)
	}
}

func TestCBTCBoundaryNodeKeepsAll(t *testing.T) {
	// All neighbors on one side: coverage unreachable, every neighbor is
	// selected (the boundary-node rule).
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(12, 3), geom.Pt(20, -2),
	}
	got := (CBTC{Alpha: 2 * math.Pi / 3}).Select(viewOf(pts, 0, 1000))
	if !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("boundary node select = %v, want all", got)
	}
}

func TestCBTCSingleNeighbor(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(5, 5)}
	got := (CBTC{Alpha: 2 * math.Pi / 3}).Select(viewOf(pts, 0, 1000))
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("single neighbor select = %v", got)
	}
	if got := (CBTC{Alpha: 2 * math.Pi}).Select(viewOf(pts, 0, 1000)); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("full-circle alpha select = %v", got)
	}
}

func TestCBTCPanicsOnBadAlpha(t *testing.T) {
	for _, alpha := range []float64{0, -1, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%g: expected panic", alpha)
				}
			}()
			(CBTC{Alpha: alpha}).Select(View{Neighbors: []NodeInfo{{ID: 1}}})
		}()
	}
}

// TestCBTCConnectivity56 verifies the 5π/6 bound: keeping unidirectional
// links, the logical topology is connected.
func TestCBTCConnectivity56(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		pts := connectedPoints(t, seed*131+7, 100)
		p := CBTC{Alpha: 5 * math.Pi / 6}
		if !logicalOR(pts, p, normalRange).Connected() {
			t.Errorf("seed %d: CBTC(5π/6) OR-topology disconnected", seed)
		}
	}
}

// TestCBTCConnectivity23Symmetric verifies the 2π/3 bound: even after
// removing unidirectional links (AND semantics), the topology is connected.
func TestCBTCConnectivity23Symmetric(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		pts := connectedPoints(t, seed*137+11, 100)
		p := CBTC{Alpha: 2 * math.Pi / 3}
		if !logicalAND(pts, p, normalRange).Connected() {
			t.Errorf("seed %d: CBTC(2π/3) AND-topology disconnected", seed)
		}
	}
}

// TestCBTCKConnectivity verifies the Bahramgiri et al. extension (§2.2):
// CBTC with alpha = 2π/3k preserves k-connectivity. For k = 2 we check
// biconnectivity of the OR-topology on instances whose unit-disk graph is
// itself biconnected.
func TestCBTCKConnectivity(t *testing.T) {
	checked := 0
	for seed := uint64(0); checked < 5 && seed < 60; seed++ {
		pts := connectedPoints(t, seed*173+19, 100)
		if !graph.UnitDisk(pts, normalRange).IsBiconnected() {
			continue // vacuous instance
		}
		checked++
		p := CBTC{Alpha: math.Pi / 3} // 2π/(3·2)
		g := logicalOR(pts, p, normalRange)
		if !g.IsBiconnected() {
			t.Errorf("seed %d: CBTC(π/3) OR-topology not biconnected", seed)
		}
	}
	if checked == 0 {
		t.Skip("no biconnected instances found")
	}
}

func TestCBTCName(t *testing.T) {
	if got := (CBTC{Alpha: 2 * math.Pi / 3}).Name(); got != "CBTC-2.09" {
		t.Errorf("Name = %q", got)
	}
}

func TestKNeighSelect(t *testing.T) {
	pts := []geom.Point{
		geom.Pt(0, 0), geom.Pt(10, 0), geom.Pt(20, 0), geom.Pt(5, 0), geom.Pt(50, 0),
	}
	got := (KNeigh{K: 2}).Select(viewOf(pts, 0, 1000))
	if !reflect.DeepEqual(got, []int{1, 3}) {
		t.Errorf("KNeigh select = %v, want [1 3] (two nearest)", got)
	}
	// K larger than the neighborhood keeps everyone.
	got = (KNeigh{K: 10}).Select(viewOf(pts, 0, 1000))
	if len(got) != 4 {
		t.Errorf("KNeigh select = %v, want all 4", got)
	}
}

func TestKNeighPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(KNeigh{K: 0}).Select(View{})
}

func TestKNeighDegreeBound(t *testing.T) {
	pts := connectedPoints(t, 43, 100)
	p := KNeigh{K: 9}
	for u := range pts {
		if got := p.Select(viewOf(pts, u, normalRange)); len(got) > 9 {
			t.Fatalf("node %d selected %d > 9", u, len(got))
		}
	}
}

// TestKNeighProbabilisticConnectivity reproduces Blough et al.'s operating
// point: with K = 9, the symmetric K-Neigh topology is connected on the
// overwhelming majority of dense random instances.
func TestKNeighProbabilisticConnectivity(t *testing.T) {
	connected := 0
	const trials = 20
	for seed := uint64(0); seed < trials; seed++ {
		pts := connectedPoints(t, seed*149+13, 100)
		if logicalAND(pts, KNeigh{K: 9}, normalRange).Connected() {
			connected++
		}
	}
	if connected < trials*8/10 {
		t.Errorf("K-Neigh(9) connected on only %d/%d instances", connected, trials)
	}
	// And K = 2 must often disconnect (it is not a connectivity-safe
	// protocol) — this guards against the AND graph accidentally keeping
	// everything.
	disconnected := 0
	for seed := uint64(0); seed < trials; seed++ {
		pts := connectedPoints(t, seed*151+17, 100)
		if !logicalAND(pts, KNeigh{K: 2}, normalRange).Connected() {
			disconnected++
		}
	}
	if disconnected == 0 {
		t.Error("K-Neigh(2) never disconnected; AND semantics suspicious")
	}
}

func TestExtraProtocolNames(t *testing.T) {
	if got := (KNeigh{K: 9}).Name(); got != "KNeigh-9" {
		t.Errorf("Name = %q", got)
	}
}
