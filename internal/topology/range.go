package topology

import "mstc/internal/geom"

// ActualRange returns the actual transmission range of a node (§3.3): the
// distance from self to the farthest logical neighbor in the view. A node
// with no logical neighbors gets range 0 (it still receives).
func ActualRange(v View, logical []int) float64 {
	r := 0.0
	for _, id := range logical {
		if n, ok := v.Find(id); ok {
			if d := v.Self.Pos.Dist(n.Pos); d > r {
				r = d
			}
		}
	}
	return r
}

// ActualRangeFrom returns the farthest distance from pos to any of the
// given neighbor positions — the multi-view variant of ActualRange, where
// the conservative caller passes the maximal per-neighbor distance.
func ActualRangeFrom(pos geom.Point, nbrs []geom.Point) float64 {
	r := 0.0
	for _, q := range nbrs {
		if d := pos.Dist(q); d > r {
			r = d
		}
	}
	return r
}

// BufferWidth returns the buffer-zone width l = 2·Δ″·v of Theorem 5, where
// maxDelay (Δ″) is the age bound on the oldest "Hello" message a current
// local view may depend on and maxSpeed (v) the maximal node speed. A node
// transmitting with range r + l is guaranteed to cover every logical
// neighbor selected from information at most maxDelay old.
func BufferWidth(maxDelay, maxSpeed float64) float64 {
	if maxDelay < 0 || maxSpeed < 0 {
		panic("topology: BufferWidth with negative argument")
	}
	return 2 * maxDelay * maxSpeed
}

// MaxDelayProactive returns Δ″ for the proactive strong-consistency scheme
// (§4.3): a view taken at t may depend on a "Hello" sent at t-Δ′ and stay
// in use until t+Δ′, so Δ″ = 2Δ′ where Δ′ is the synchronous delay
// (the "Hello" interval plus clock skew).
func MaxDelayProactive(syncDelay float64) float64 { return 2 * syncDelay }

// MaxDelayReactive returns Δ″ for the reactive scheme (§4.3): all "Hello"
// messages are sent at the start of the interval, so Δ″ is the interval
// plus the flooding propagation delay.
func MaxDelayReactive(helloInterval, floodDelay float64) float64 {
	return helloInterval + floodDelay
}

// MaxDelayWeak returns Δ″ for the weak-consistency scheme (§4.3): with k
// stored "Hello" messages per node, the oldest usable message is (k+1)
// intervals old.
func MaxDelayWeak(helloInterval float64, k int) float64 {
	return float64(k+1) * helloInterval
}

// rangeSlack widens transmission ranges by a relative 1e-9 (0.1 µm at
// 100 m) so that the farthest logical neighbor — which by construction sits
// *exactly* at the computed range — is covered regardless of how the
// coverage test rounds (math.Hypot and squared-distance comparisons round
// differently at the boundary).
const rangeSlack = 1 + 1e-9

// ExtendedRange returns the transmission range a node actually uses:
// actual + buffer, clamped to the normal transmission range (a radio cannot
// exceed its maximum power), with a negligible slack widening for
// float-rounding robustness at the boundary. A node with no logical
// neighbors (actual == 0) stays silent.
func ExtendedRange(actual, buffer, normal float64) float64 {
	if actual == 0 { //lint:ignore float-eq exact sentinel: a node with no selected neighbors stays silent
		// No logical neighbors selected: nothing to cover.
		return 0
	}
	r := (actual + buffer) * rangeSlack
	if r > normal {
		r = normal
	}
	return r
}
