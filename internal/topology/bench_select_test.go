package topology

import (
	"testing"

	"mstc/internal/geom"
	"mstc/internal/xrand"
)

// benchView builds one node's view at the paper's density: 100 nodes in a
// 900 m square, 250 m normal range (~24 neighbors).
func benchView() View {
	rng := xrand.New(9)
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Pt(rng.Uniform(0, 900), rng.Uniform(0, 900))
	}
	return viewOf(pts, 0, normalRange)
}

func benchSelect(b *testing.B, p Protocol) {
	v := benchView()
	s := &Scratch{}
	var dst []int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = SelectInto(p, v, dst[:0], s)
	}
	if len(dst) == 0 {
		b.Fatal("selected nothing")
	}
}

func BenchmarkRNGSelect(b *testing.B)     { benchSelect(b, RNG{}) }
func BenchmarkGabrielSelect(b *testing.B) { benchSelect(b, Gabriel{}) }
func BenchmarkMSTSelect(b *testing.B)     { benchSelect(b, MST{Range: normalRange}) }
func BenchmarkSPTSelect(b *testing.B)     { benchSelect(b, SPT{Alpha: 2, Range: normalRange}) }
func BenchmarkYaoSelect(b *testing.B)     { benchSelect(b, Yao{K: 6}) }
