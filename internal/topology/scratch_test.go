package topology

import (
	"fmt"
	"reflect"
	"testing"

	"mstc/internal/geom"
	"mstc/internal/graph"
	"mstc/internal/xrand"
)

// randView builds a random canonical view with ids drawn from a sparse id
// space. Coordinates snap to a coarse grid so equal distances (and therefore
// cost ties) actually occur, exercising every tie-break path.
func randView(rng *xrand.Source, maxNbrs int) View {
	n := rng.Intn(maxNbrs + 1)
	ids := rng.Perm(3 * (n + 1))[: n+1 : n+1]
	sortInts(ids)
	selfAt := rng.Intn(n + 1)
	pt := func() geom.Point {
		return geom.Pt(float64(rng.Intn(12))*25, float64(rng.Intn(12))*25)
	}
	v := View{Self: NodeInfo{ID: ids[selfAt], Pos: pt()}}
	for i, id := range ids {
		if i == selfAt {
			continue
		}
		v.Neighbors = append(v.Neighbors, NodeInfo{ID: id, Pos: pt()})
	}
	return v.Canon()
}

// randMultiView is randView with up to k positions per node.
func randMultiView(rng *xrand.Source, maxNbrs, k int) MultiView {
	v := randView(rng, maxNbrs)
	multi := func(p geom.Point) []geom.Point {
		pos := []geom.Point{p}
		for len(pos) < 1+rng.Intn(k) {
			pos = append(pos, geom.Pt(p.X+float64(rng.Intn(5))*10, p.Y+float64(rng.Intn(5))*10))
		}
		return pos
	}
	mv := MultiView{Self: MultiNodeInfo{ID: v.Self.ID, Positions: multi(v.Self.Pos)}}
	for _, nb := range v.Neighbors {
		mv.Neighbors = append(mv.Neighbors, MultiNodeInfo{ID: nb.ID, Positions: multi(nb.Pos)})
	}
	return mv
}

// refMSTSelect is the historical MST.Select implementation (viewGraph +
// graph.PrimMST), kept as the reference the Prim-replay kernel must match.
func refMSTSelect(m MST, v View) []int {
	ids, selfIdx, g := viewGraph(v, m.Range, DistanceCost)
	edges, _ := graph.PrimMST(g)
	out := make([]int, 0, 4)
	for _, e := range edges {
		if e.U == selfIdx {
			out = append(out, ids[e.V])
		} else if e.V == selfIdx {
			out = append(out, ids[e.U])
		}
	}
	sortInts(out)
	return out
}

// refSPTSelect is the historical SPT.Select implementation (viewGraph +
// graph.Dijkstra), kept as the reference the dense-Dijkstra kernel must
// match.
func refSPTSelect(s SPT, v View) []int {
	cost := EnergyCost(s.Alpha, s.Fixed)
	ids, selfIdx, g := viewGraph(v, s.Range, cost)
	dist, _ := graph.Dijkstra(g, selfIdx)
	out := make([]int, 0, 4)
	idx := make(map[int]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	for _, n := range v.Neighbors {
		direct := cost(v.Self.Pos.Dist(n.Pos))
		if dist[idx[n.ID]] >= direct {
			out = append(out, n.ID)
		}
	}
	return out
}

// refWeakMSTSelect is the historical WeakMST.SelectWeak (multiGraph +
// minimaxFromSelf).
func refWeakMSTSelect(m WeakMST, v MultiView) []int {
	mg := newMultiGraph(v, m.Range, DistanceCost)
	bottleneck := mg.minimaxFromSelf()
	out := make([]int, 0, 4)
	for _, n := range v.Neighbors {
		cMinUV, _ := CostRange(v.Self.Positions, n.Positions, DistanceCost)
		if !(cMinUV > bottleneck[mg.idx[n.ID]]) {
			out = append(out, n.ID)
		}
	}
	sortInts(out)
	return out
}

// refWeakSPTSelect is the historical WeakSPT.SelectWeak (multiGraph +
// shortestFromSelf).
func refWeakSPTSelect(s WeakSPT, v MultiView) []int {
	cost := EnergyCost(s.Alpha, s.Fixed)
	mg := newMultiGraph(v, s.Range, cost)
	dist := mg.shortestFromSelf()
	out := make([]int, 0, 4)
	for _, n := range v.Neighbors {
		cMinUV, _ := CostRange(v.Self.Positions, n.Positions, cost)
		if !(cMinUV > dist[mg.idx[n.ID]]) {
			out = append(out, n.ID)
		}
	}
	sortInts(out)
	return out
}

func sameSet(t *testing.T, label string, got, want []int) {
	t.Helper()
	if len(got) == 0 && len(want) == 0 {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
}

// TestMSTKernelMatchesPrim pins the kernel against graph.PrimMST. The
// kernel is a literal replay of Prim over a dense matrix, so it must
// reproduce Prim's tie behavior exactly — including stale heap entries
// committing their recorded edge source — which the grid-snapped
// coordinates (forcing equal edge weights) exercise.
func TestMSTKernelMatchesPrim(t *testing.T) {
	rng := xrand.New(71)
	s := &Scratch{}
	for trial := 0; trial < 400; trial++ {
		v := randView(rng, 24)
		for _, r := range []float64{0, 120, 275, 1e9} {
			m := MST{Range: r}
			got := m.SelectInto(v, nil, s)
			sameSet(t, fmt.Sprintf("trial %d range %g", trial, r), got, refMSTSelect(m, v))
		}
	}
}

// TestSPTKernelMatchesDijkstra pins the dense-Dijkstra kernel against the
// historical viewGraph + graph.Dijkstra path, including the equal-distance
// predecessor tie-break.
func TestSPTKernelMatchesDijkstra(t *testing.T) {
	rng := xrand.New(72)
	s := &Scratch{}
	for trial := 0; trial < 400; trial++ {
		v := randView(rng, 24)
		for _, p := range []SPT{
			{Alpha: 2, Range: 275},
			{Alpha: 4, Range: 275},
			{Alpha: 2, Fixed: 1000, Range: 120},
			{Alpha: 1, Range: 0},
		} {
			got := p.SelectInto(v, nil, s)
			sameSet(t, fmt.Sprintf("trial %d %s", trial, p.Name()), got, refSPTSelect(p, v))
		}
	}
}

// TestWeakKernelsMatchReference pins the weak-consistency scratch kernels
// against the historical multiGraph implementations.
func TestWeakKernelsMatchReference(t *testing.T) {
	rng := xrand.New(73)
	s := &Scratch{}
	for trial := 0; trial < 300; trial++ {
		mv := randMultiView(rng, 16, 3)
		for _, r := range []float64{0, 150, 275} {
			m := WeakMST{Range: r}
			sameSet(t, fmt.Sprintf("trial %d wMST range %g", trial, r),
				m.SelectWeakInto(mv, nil, s), refWeakMSTSelect(m, mv))
			for _, alpha := range []float64{2, 4} {
				p := WeakSPT{Alpha: alpha, Range: r}
				sameSet(t, fmt.Sprintf("trial %d %s range %g", trial, p.Name(), r),
					p.SelectWeakInto(mv, nil, s), refWeakSPTSelect(p, mv))
			}
		}
	}
}

// TestSelectIntoMatchesSelect fuzzes every registered protocol: the kernel
// must append exactly Select's output after any existing dst prefix, with a
// Scratch shared dirty across protocols and trials.
func TestSelectIntoMatchesSelect(t *testing.T) {
	names := []string{"MST", "RNG", "GG", "SPT-2", "SPT-4", "Yao-6", "CBTC", "CBTC-56", "KNeigh-9", "none"}
	rng := xrand.New(74)
	s := &Scratch{}
	prefix := []int{-7, 99}
	for trial := 0; trial < 250; trial++ {
		v := randView(rng, 20)
		for _, name := range names {
			p, err := ByName(name, 275)
			if err != nil {
				t.Fatal(err)
			}
			want := p.Select(v)
			got := SelectInto(p, v, append([]int(nil), prefix...), s)
			if !reflect.DeepEqual(got[:len(prefix)], prefix) {
				t.Fatalf("trial %d %s: dst prefix clobbered: %v", trial, name, got)
			}
			sameSet(t, fmt.Sprintf("trial %d %s", trial, name), got[len(prefix):], want)
		}
	}
}

// TestSelectWeakIntoMatchesSelectWeak is the weak-protocol analogue.
func TestSelectWeakIntoMatchesSelectWeak(t *testing.T) {
	names := []string{"MST", "RNG", "SPT-2", "SPT-4"}
	rng := xrand.New(75)
	s := &Scratch{}
	prefix := []int{-3}
	for trial := 0; trial < 200; trial++ {
		mv := randMultiView(rng, 14, 3)
		for _, name := range names {
			p, err := WeakByName(name, 275)
			if err != nil {
				t.Fatal(err)
			}
			want := p.SelectWeak(mv)
			got := SelectWeakInto(p, mv, append([]int(nil), prefix...), s)
			if !reflect.DeepEqual(got[:len(prefix)], prefix) {
				t.Fatalf("trial %d w%s: dst prefix clobbered: %v", trial, name, got)
			}
			sameSet(t, fmt.Sprintf("trial %d w%s", trial, name), got[len(prefix):], want)
		}
	}
}
