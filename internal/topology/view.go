package topology

import (
	"math"
	"sort"

	"mstc/internal/geom"
)

// NodeInfo is one node's entry in a local view: its id and the position it
// advertised in the "Hello" message the view was built from.
type NodeInfo struct {
	ID  int
	Pos geom.Point
}

// View is a (strongly) consistent local view (§3.1): the observing node
// itself plus one position per 1-hop neighbor. Consistency in the sense of
// Definition 1 — a single version per node — is the caller's responsibility
// (package manet builds views from a version store; package snapshot builds
// them omnisciently).
type View struct {
	Self      NodeInfo
	Neighbors []NodeInfo
}

// Canon returns the view with neighbors sorted by id and any duplicate or
// self entries removed (keeping the first occurrence). Selectors require
// canonical views; building one is O(n log n).
func (v View) Canon() View {
	nbrs := make([]NodeInfo, 0, len(v.Neighbors))
	seen := map[int]bool{v.Self.ID: true}
	for _, n := range v.Neighbors {
		if !seen[n.ID] {
			seen[n.ID] = true
			nbrs = append(nbrs, n)
		}
	}
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].ID < nbrs[j].ID })
	return View{Self: v.Self, Neighbors: nbrs}
}

// EnsureCanon returns v unchanged when it is already canonical — neighbors
// strictly ascending by id with no entry equal to Self — and falls back to
// Canon otherwise. Views assembled from a hello.Table (which stores at most
// one live entry per neighbor and lists them in ascending id order) hit the
// no-op path, so the per-event selection pipeline canonicalizes without
// allocating.
func (v View) EnsureCanon() View {
	for i, n := range v.Neighbors {
		if n.ID == v.Self.ID || (i > 0 && v.Neighbors[i-1].ID >= n.ID) {
			return v.Canon()
		}
	}
	return v
}

// Find returns the neighbor entry with the given id, if present.
func (v View) Find(id int) (NodeInfo, bool) {
	for _, n := range v.Neighbors {
		if n.ID == id {
			return n, true
		}
	}
	return NodeInfo{}, false
}

// MultiNodeInfo is one node's entry in a weakly consistent view: all
// positions carried by the k most recent "Hello" messages stored for it,
// newest first.
type MultiNodeInfo struct {
	ID        int
	Positions []geom.Point
}

// MultiView is a weakly consistent local view (§4.2): the observing node's
// own recently *advertised* positions plus the stored recent positions of
// every neighbor. Link (u, v) then has a cost *set* — one cost per pair of
// stored positions — whose extrema drive the enhanced removal conditions.
type MultiView struct {
	Self      MultiNodeInfo
	Neighbors []MultiNodeInfo
}

// CostRange returns the minimal and maximal cost of the link between two
// position sets under fn: the extrema of { fn(|p-q|) : p ∈ a, q ∈ b }.
// Because fn is strictly increasing, the extrema of the distances give the
// extrema of the costs.
func CostRange(a, b []geom.Point, fn CostFn) (cMin, cMax float64) {
	dMin, dMax := distRange(a, b)
	return fn(dMin), fn(dMax)
}

func distRange(a, b []geom.Point) (dMin, dMax float64) {
	dMin = math.Inf(1)
	dMax = -1
	for _, p := range a {
		for _, q := range b {
			d2 := p.Dist2(q)
			if d2 < dMin {
				dMin = d2
			}
			if d2 > dMax {
				dMax = d2
			}
		}
	}
	if dMax < 0 { // one of the sets is empty
		return math.Inf(1), math.Inf(1)
	}
	return math.Sqrt(dMin), math.Sqrt(dMax)
}
