package topology

import (
	"fmt"
	"math"
)

// Baselines returns the four baseline protocols of the paper's evaluation
// (§5.1), in the order used by Table 1 and Figures 6–10: MST, RNG, SPT-4,
// SPT-2. normalRange is the normal transmission range (250 m in the paper).
func Baselines(normalRange float64) []Protocol {
	return []Protocol{
		MST{Range: normalRange},
		RNG{},
		SPT{Alpha: 4, Range: normalRange},
		SPT{Alpha: 2, Range: normalRange},
	}
}

// ByName returns the protocol with the given name ("MST", "RNG", "GG",
// "SPT-2", "SPT-4", "Yao-6", "none", ...). normalRange parameterizes the
// protocols that need the normal transmission range.
func ByName(name string, normalRange float64) (Protocol, error) {
	switch name {
	case "MST":
		return MST{Range: normalRange}, nil
	case "RNG":
		return RNG{}, nil
	case "GG":
		return Gabriel{}, nil
	case "SPT-2":
		return SPT{Alpha: 2, Range: normalRange}, nil
	case "SPT-4":
		return SPT{Alpha: 4, Range: normalRange}, nil
	case "Yao-6":
		return Yao{K: 6}, nil
	case "CBTC":
		return CBTC{Alpha: 2 * math.Pi / 3}, nil
	case "CBTC-56":
		return CBTC{Alpha: 5 * math.Pi / 6}, nil
	case "KNeigh-9":
		return KNeigh{K: 9}, nil
	case "none":
		return None{}, nil
	}
	return nil, fmt.Errorf("topology: unknown protocol %q", name)
}

// WeakByName returns the weak-consistency variant of the given protocol
// name ("MST", "RNG", "SPT-2", "SPT-4").
func WeakByName(name string, normalRange float64) (WeakProtocol, error) {
	switch name {
	case "MST":
		return WeakMST{Range: normalRange}, nil
	case "RNG":
		return WeakRNG{}, nil
	case "SPT-2":
		return WeakSPT{Alpha: 2, Range: normalRange}, nil
	case "SPT-4":
		return WeakSPT{Alpha: 4, Range: normalRange}, nil
	}
	return nil, fmt.Errorf("topology: no weak variant for protocol %q", name)
}
