package topology

import (
	"math"
	"testing"
	"testing/quick"

	"mstc/internal/geom"
)

func TestActualRange(t *testing.T) {
	v := View{
		Self: NodeInfo{ID: 0, Pos: geom.Pt(0, 0)},
		Neighbors: []NodeInfo{
			{ID: 1, Pos: geom.Pt(30, 0)},
			{ID: 2, Pos: geom.Pt(0, 40)},
			{ID: 3, Pos: geom.Pt(100, 0)},
		},
	}.Canon()
	if got := ActualRange(v, []int{1, 2}); got != 40 {
		t.Errorf("ActualRange = %v, want 40", got)
	}
	if got := ActualRange(v, []int{1, 2, 3}); got != 100 {
		t.Errorf("ActualRange = %v, want 100", got)
	}
	if got := ActualRange(v, nil); got != 0 {
		t.Errorf("ActualRange(no logical) = %v, want 0", got)
	}
	// Unknown ids are ignored.
	if got := ActualRange(v, []int{99}); got != 0 {
		t.Errorf("ActualRange(unknown) = %v, want 0", got)
	}
}

func TestActualRangeFrom(t *testing.T) {
	got := ActualRangeFrom(geom.Pt(0, 0), []geom.Point{geom.Pt(3, 4), geom.Pt(1, 1)})
	if got != 5 {
		t.Errorf("ActualRangeFrom = %v, want 5", got)
	}
	if got := ActualRangeFrom(geom.Pt(0, 0), nil); got != 0 {
		t.Errorf("empty = %v, want 0", got)
	}
}

func TestBufferWidthTheorem5Formula(t *testing.T) {
	// l = 2 Δ″ v. Paper's worst case (§5.2): Δ″ = 2.5 s (twice the
	// maximal Hello interval), twice-the-maximal relative speed folded
	// in by the factor 2.
	if got := BufferWidth(2.5, 20); got != 100 {
		t.Errorf("BufferWidth(2.5, 20) = %v, want 100", got)
	}
	if got := BufferWidth(0, 100); got != 0 {
		t.Errorf("BufferWidth(0, v) = %v, want 0", got)
	}
}

func TestBufferWidthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BufferWidth(-1, 1)
}

func TestMaxDelays(t *testing.T) {
	if got := MaxDelayProactive(1.25); got != 2.5 {
		t.Errorf("proactive = %v, want 2.5", got)
	}
	if got := MaxDelayReactive(1.0, 0.05); got != 1.05 {
		t.Errorf("reactive = %v, want 1.05", got)
	}
	if got := MaxDelayWeak(1.0, 2); got != 3 {
		t.Errorf("weak = %v, want 3", got)
	}
}

func TestExtendedRange(t *testing.T) {
	if got := ExtendedRange(80, 10, 250); math.Abs(got-90) > 90*2e-9 {
		t.Errorf("ExtendedRange = %v, want ~90", got)
	}
	if got := ExtendedRange(80, 10, 250); got < 90 {
		t.Errorf("ExtendedRange = %v must not round below 90 (boundary coverage)", got)
	}
	// Clamped to the normal range.
	if got := ExtendedRange(200, 100, 250); got != 250 {
		t.Errorf("clamped = %v, want 250", got)
	}
	// No logical neighbors: stays silent.
	if got := ExtendedRange(0, 100, 250); got != 0 {
		t.Errorf("silent = %v, want 0", got)
	}
}

func TestExtendedRangeMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw%250) + 1
		b1 := float64(bRaw % 100)
		b2 := b1 + 5
		return ExtendedRange(a, b2, 250) >= ExtendedRange(a, b1, 250)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestTheorem5CoverageBound is the core of the buffer-zone guarantee: if a
// node selected a logical neighbor from position information at most
// maxDelay old, and both endpoints have since moved at most maxSpeed *
// maxDelay, the current distance cannot exceed measured + 2*maxDelay*
// maxSpeed = r + l. This is the inequality in Theorem 5's proof; we verify
// it by adversarial random motion.
func TestTheorem5CoverageBound(t *testing.T) {
	f := func(seed uint64) bool {
		// Random measured configuration and arbitrary per-node movement
		// within the speed/delay budget.
		s := seed
		next := func() float64 {
			s = s*6364136223846793005 + 1442695040888963407
			return float64(s>>11) / (1 << 53)
		}
		const maxDelay, maxSpeed = 2.5, 40.0
		u0 := geom.Pt(next()*900, next()*900)
		v0 := geom.Pt(next()*900, next()*900)
		measured := u0.Dist(v0)
		budget := maxDelay * maxSpeed
		u1 := u0.Add(geom.Polar(next()*budget, next()*6.28))
		v1 := v0.Add(geom.Polar(next()*budget, next()*6.28))
		l := BufferWidth(maxDelay, maxSpeed)
		return u1.Dist(v1) <= measured+l+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEnergyCostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for alpha < 1")
		}
	}()
	EnergyCost(0.5, 0)
}

func TestLinkLessTotalOrder(t *testing.T) {
	// Strictness: a link is never less than itself.
	if LinkLess(5, 1, 2, 5, 2, 1) {
		t.Error("LinkLess must treat (1,2) and (2,1) as the same link")
	}
	// Cost dominates.
	if !LinkLess(4, 9, 8, 5, 0, 1) {
		t.Error("smaller cost must win")
	}
	// Tie broken by canonical pair.
	if !LinkLess(5, 1, 3, 5, 2, 3) {
		t.Error("tie must break toward smaller min id")
	}
	if !LinkLess(5, 1, 2, 5, 1, 3) {
		t.Error("tie must break toward smaller max id")
	}
	// Antisymmetry under ties.
	if LinkLess(5, 2, 3, 5, 1, 3) {
		t.Error("antisymmetry violated")
	}
}
