// Package topology implements the paper's topology-control framework
// (§3–§4): link costs with a strict total order, local views, the
// logical-neighbor selection rules of the RNG-, Gabriel-, MST-, SPT- and
// Yao-based protocols, the enhanced (weakly consistent) selection rules,
// and transmission-range computation with buffer zones.
//
// Everything here is pure: selectors map a local view to a logical-neighbor
// set with no hidden state, which is what lets the same code run inside the
// discrete-event simulator (package manet), inside the omniscient snapshot
// analyzer (package snapshot), and inside property tests of Theorems 1–5.
package topology

import (
	"fmt"
	"math"
)

// CostFn maps a link's Euclidean distance to its cost c(u,v) (§3.1).
// It must be strictly increasing so that cost order equals distance order.
type CostFn func(d float64) float64

// DistanceCost is c = d, used by RNG- and MST-based protocols.
func DistanceCost(d float64) float64 { return d }

// EnergyCost returns the cost function c = d^alpha + fixed, the transmission
// energy model used by SPT-based (minimum-energy) protocols. The paper's
// simulation uses fixed = 0 with alpha = 2 (free space) and alpha = 4
// (two-ray ground reflection).
func EnergyCost(alpha, fixed float64) CostFn {
	if alpha < 1 {
		panic(fmt.Sprintf("topology: EnergyCost alpha %g < 1", alpha))
	}
	return func(d float64) float64 { return math.Pow(d, alpha) + fixed }
}

// LinkLess is the strict total order over links required by the framework:
// primarily by cost, with the canonical (min id, max id) pair breaking ties
// (§3.1: "If two links have the same cost, IDs of end nodes can be used to
// break a tie"). A strict total order is what makes simultaneous link
// removals safe in Theorem 1's proof.
func LinkLess(c1 float64, u1, v1 int, c2 float64, u2, v2 int) bool {
	if c1 != c2 { //lint:ignore float-eq exact compare is Theorem 1's strict total order over link costs
		return c1 < c2
	}
	if u1 > v1 {
		u1, v1 = v1, u1
	}
	if u2 > v2 {
		u2, v2 = v2, u2
	}
	if u1 != u2 {
		return u1 < u2
	}
	return v1 < v2
}
