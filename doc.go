// Package mstc is a from-scratch Go reproduction of "Mobility-Sensitive
// Topology Control in Mobile Ad Hoc Networks" (Wu & Dai, IPDPS 2004; TPDS
// 2006): localized topology-control protocols (RNG, Gabriel, local-MST,
// minimum-energy SPT, Yao), the consistency and mobility-management
// mechanisms that keep them connected under node movement, and the full
// discrete-event simulation study that evaluates them.
//
// The implementation lives under internal/; see README.md for the map,
// DESIGN.md for the system inventory, and EXPERIMENTS.md for the
// paper-versus-measured record. The benchmarks in bench_test.go regenerate
// every table and figure of the paper's evaluation section.
package mstc
