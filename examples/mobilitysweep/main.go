// Mobility sweep: reproduce the qualitative arc of the paper in one run —
// pick a protocol, sweep the average moving speed, and watch connectivity
// collapse without mobility management and survive with it (a condensed
// Fig. 6 + Fig. 9 for a single protocol).
package main

import (
	"flag"
	"fmt"
	"log"

	"mstc/internal/experiment"
	"mstc/internal/manet"
)

func main() {
	log.SetFlags(0)
	protocol := flag.String("protocol", "RNG", "protocol to sweep (MST, RNG, SPT-2, SPT-4)")
	reps := flag.Int("reps", 3, "repetitions per point")
	duration := flag.Float64("duration", 20, "seconds per run")
	flag.Parse()

	o := experiment.DefaultOptions()
	o.Reps = *reps
	o.Duration = *duration
	o.Speeds = []float64{1, 10, 20, 40, 80, 160}

	mechs := []manet.Mechanisms{
		{},                            // raw
		{Buffer: 10},                  // buffer only
		{Buffer: 10, ViewSync: true},  // buffer + view synchronization
		{Buffer: 100, ViewSync: true}, // wide buffer + view synchronization
	}
	labels := []string{"raw", "buf10", "buf10+VS", "buf100+VS"}

	aggs, err := experiment.Sweep(o, []string{*protocol}, o.Speeds, mechs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("connectivity ratio of %s under increasing mobility (%d reps x %gs)\n\n",
		*protocol, o.Reps, o.Duration)
	fmt.Printf("%-10s", "speed m/s")
	for _, l := range labels {
		fmt.Printf("  %-14s", l)
	}
	fmt.Println()
	i := 0
	for _, sp := range o.Speeds {
		fmt.Printf("%-10.0f", sp)
		for range mechs {
			a := aggs[i]
			i++
			fmt.Printf("  %-14s", fmt.Sprintf("%.3f±%.3f", a.Connectivity.Mean(), a.Connectivity.CI95()))
		}
		fmt.Println()
	}
}
