// Consistency walkthrough: the paper's Fig. 2 counterexample, executed.
//
// Three nodes u, v, w. Node w moves upward between two "Hello" messages.
// Node u decides with w's OLD position, node v with the NEW one — two
// inconsistent views of the same link costs. Under the MST-based protocol
// both endpoints drop their link to w: the logical topology partitions even
// though the physical network is connected the whole time.
//
// The walkthrough then repairs the partition twice: with strong view
// consistency (both observers pinned to the same "Hello" version) and with
// weak consistency (both keep the two recent versions and apply the
// enhanced, conservative removal conditions).
package main

import (
	"fmt"

	"mstc/internal/geom"
	"mstc/internal/topology"
)

func main() {
	// Geometry of Fig. 2 (distances: d(u,v) = 5; w at distance 6/4 from
	// u/v before the move, 4/6 after).
	u := geom.Pt(0, 0)
	v := geom.Pt(5, 0)
	wOld := circleIntersect(u, 6, v, 4)
	wNew := circleIntersect(u, 4, v, 6)
	p := topology.MST{Range: 100}

	fmt.Println("== inconsistent views (the failure of Fig. 2) ==")
	uView := topology.View{Self: topology.NodeInfo{ID: 0, Pos: u}, Neighbors: []topology.NodeInfo{
		{ID: 1, Pos: v}, {ID: 2, Pos: wOld}, // u still holds w's old Hello
	}}.Canon()
	vView := topology.View{Self: topology.NodeInfo{ID: 1, Pos: v}, Neighbors: []topology.NodeInfo{
		{ID: 0, Pos: u}, {ID: 2, Pos: wNew}, // v already has the new one
	}}.Canon()
	uSel := p.Select(uView)
	vSel := p.Select(vView)
	fmt.Printf("u selects %v  (drops w: in u's view the u-w link is the longest)\n", names(uSel))
	fmt.Printf("v selects %v  (drops w: in v's view the v-w link is the longest)\n", names(vSel))
	fmt.Println("-> w is isolated in the logical topology: PARTITION")

	fmt.Println("\n== strong consistency (both pinned to w's old Hello) ==")
	vViewOld := topology.View{Self: topology.NodeInfo{ID: 1, Pos: v}, Neighbors: []topology.NodeInfo{
		{ID: 0, Pos: u}, {ID: 2, Pos: wOld},
	}}.Canon()
	fmt.Printf("u selects %v\n", names(p.Select(uView)))
	fmt.Printf("v selects %v  (keeps w)\n", names(p.Select(vViewOld)))
	wView := topology.View{Self: topology.NodeInfo{ID: 2, Pos: wOld}, Neighbors: []topology.NodeInfo{
		{ID: 0, Pos: u}, {ID: 1, Pos: v},
	}}.Canon()
	fmt.Printf("w selects %v\n", names(p.Select(wView)))
	fmt.Println("-> logical topology u-v-w is CONNECTED (Theorem 1)")

	fmt.Println("\n== weak consistency (both keep k=2 recent Hellos) ==")
	wp := topology.WeakMST{Range: 100}
	wHist := []geom.Point{wNew, wOld} // newest first
	uMulti := topology.MultiView{
		Self: topology.MultiNodeInfo{ID: 0, Positions: []geom.Point{u}},
		Neighbors: []topology.MultiNodeInfo{
			{ID: 1, Positions: []geom.Point{v}},
			{ID: 2, Positions: wHist},
		},
	}
	vMulti := topology.MultiView{
		Self: topology.MultiNodeInfo{ID: 1, Positions: []geom.Point{v}},
		Neighbors: []topology.MultiNodeInfo{
			{ID: 0, Positions: []geom.Point{u}},
			{ID: 2, Positions: wHist},
		},
	}
	fmt.Printf("u selects %v\n", names(wp.SelectWeak(uMulti)))
	fmt.Printf("v selects %v\n", names(wp.SelectWeak(vMulti)))
	fmt.Println("-> conservative decisions keep enough links: CONNECTED (Theorem 4)")
}

// circleIntersect returns the upper intersection of circles centered at a
// (radius ra) and b (radius rb).
func circleIntersect(a geom.Point, ra float64, b geom.Point, rb float64) geom.Point {
	d := a.Dist(b)
	x := (ra*ra - rb*rb + d*d) / (2 * d)
	y2 := ra*ra - x*x
	if y2 < 0 {
		y2 = 0
	}
	dir := b.Sub(a).Unit()
	perp := geom.Vec(-dir.DY, dir.DX)
	return a.Add(dir.Scale(x)).Add(perp.Scale(sqrt(y2)))
}

func sqrt(x float64) float64 {
	z := x
	if z <= 0 {
		return 0
	}
	for i := 0; i < 64; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func names(sel []int) []string {
	out := make([]string, len(sel))
	for i, id := range sel {
		out[i] = string(rune('u' + id))
	}
	return out
}
