// Quickstart: build a random static network, run every topology-control
// protocol over it, and compare the resulting topologies — then run one
// short discrete-event simulation to see the same protocol operating on
// gossiped "Hello" state instead of omniscient positions.
package main

import (
	"fmt"

	"mstc/internal/geom"
	"mstc/internal/manet"
	"mstc/internal/mobility"
	"mstc/internal/snapshot"
	"mstc/internal/topology"
	"mstc/internal/xrand"
)

func main() {
	const (
		n           = 100
		side        = 900.0
		normalRange = 250.0
	)
	arena := geom.Square(side)

	// Place nodes uniformly; retry until the unit-disk graph is connected
	// (the standing assumption of every topology-control protocol).
	rng := xrand.New(7)
	var pts []geom.Point
	for {
		pts = mobility.UniformPoints(arena, n, rng)
		if snapshot.Original(pts, normalRange).Connected() {
			break
		}
	}

	fmt.Printf("network: %d nodes in %.0fx%.0f m, normal range %.0f m\n", n, side, side, normalRange)
	orig := snapshot.Original(pts, normalRange)
	fmt.Printf("original topology: %d links, avg degree %.1f\n\n", orig.M(), 2*float64(orig.M())/n)

	fmt.Printf("%-8s %8s %8s %12s %10s\n", "protocol", "links", "degree", "range (m)", "connected")
	protocols := []topology.Protocol{
		topology.None{},
		topology.MST{Range: normalRange},
		topology.RNG{},
		topology.Gabriel{},
		topology.Yao{K: 6},
		topology.SPT{Alpha: 4, Range: normalRange},
		topology.SPT{Alpha: 2, Range: normalRange},
	}
	for _, p := range protocols {
		s := snapshot.Summarize(pts, p, 0, normalRange)
		sel := snapshot.Selections(pts, p, normalRange)
		logical := snapshot.Logical(pts, sel)
		fmt.Printf("%-8s %8d %8.2f %12.1f %10v\n",
			p.Name(), logical.M(), s.AvgLogicalDegree, s.AvgRange, logical.Connected())
	}

	// The same protocol inside the full event-driven simulation:
	// asynchronous beacons, neighbor tables, flooding probes.
	fmt.Println("\nevent-driven run (static network, RNG protocol, 20 s):")
	model := mobility.NewStatic(arena, pts, 20)
	nw, err := manet.NewNetwork(model, manet.Config{
		Protocol:  topology.RNG{},
		FloodRate: 10,
		Seed:      1,
	})
	if err != nil {
		panic(err)
	}
	res := nw.Run(20)
	fmt.Printf("  connectivity ratio %.3f over %d floods\n", res.Connectivity, res.Floods)
	fmt.Printf("  avg tx range %.1f m, logical degree %.2f\n", res.AvgTxRange, res.AvgLogicalDegree)
}
