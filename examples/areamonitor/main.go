// Area monitoring: the motivating workload of the paper's introduction.
// A fleet of mobile sensors covers an area; each second a random sensor
// floods an observation to the whole network. Topology control keeps
// transmission power low, but naive (mobility-insensitive) control loses
// reports as soon as nodes move. The run compares three configurations
// under increasing mobility:
//
//  1. RNG baseline (mobility-insensitive),
//  2. RNG + 10 m buffer zone + view synchronization,
//  3. RNG + 100 m buffer + physical neighbors (maximum robustness).
package main

import (
	"fmt"

	"mstc/internal/geom"
	"mstc/internal/manet"
	"mstc/internal/mobility"
	"mstc/internal/topology"
	"mstc/internal/xrand"
)

func main() {
	const (
		sensors  = 100
		side     = 900.0
		duration = 40.0
	)
	configs := []struct {
		name string
		mech manet.Mechanisms
	}{
		{"baseline", manet.Mechanisms{}},
		{"buffer10+viewsync", manet.Mechanisms{Buffer: 10, ViewSync: true}},
		{"buffer100+physical", manet.Mechanisms{Buffer: 100, PhysicalNeighbors: true}},
	}

	fmt.Println("area monitoring: fraction of sensor reports reaching the fleet")
	fmt.Printf("%-10s", "speed m/s")
	for _, c := range configs {
		fmt.Printf("  %-20s", c.name)
	}
	fmt.Println()

	for _, speed := range []float64{1, 10, 20, 40, 80} {
		fmt.Printf("%-10.0f", speed)
		for ci, c := range configs {
			lo, hi := mobility.SpeedSetdest(speed)
			model, err := mobility.NewRandomWaypoint(geom.Square(side), mobility.WaypointConfig{
				N: sensors, SpeedMin: lo, SpeedMax: hi, Horizon: duration,
			}, xrand.New(uint64(speed*10)+1))
			if err != nil {
				panic(err)
			}
			nw, err := manet.NewNetwork(model, manet.Config{
				Protocol:  topology.RNG{},
				FloodRate: 10,
				Seed:      uint64(ci) + 99,
				Mech:      c.mech,
			})
			if err != nil {
				panic(err)
			}
			res := nw.Run(duration)
			fmt.Printf("  %-20s", fmt.Sprintf("%.3f (range %.0fm)", res.Connectivity, res.AvgTxRange))
		}
		fmt.Println()
	}
	fmt.Println("\nthe buffer zone + view synchronization recover report delivery at a")
	fmt.Println("fraction of the power a 250 m fixed-range deployment would spend.")
}
