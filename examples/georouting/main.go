// Geographic routing over controlled topologies: the downstream workload
// topology control exists for. Greedy forwarding needs only the positions
// the "Hello" protocol already gossips; on the planar Gabriel/RNG
// topologies, greedy-face-greedy (GFG/GPSR) recovery makes delivery
// guaranteed. The run compares greedy success, GFG success, and path
// stretch across the protocol family on one static network.
package main

import (
	"fmt"

	"mstc/internal/geom"
	"mstc/internal/graph"
	"mstc/internal/mobility"
	"mstc/internal/route"
	"mstc/internal/snapshot"
	"mstc/internal/topology"
	"mstc/internal/xrand"
)

func main() {
	const (
		n           = 100
		normalRange = 250.0
	)
	arena := geom.Square(900)
	rng := xrand.New(17)
	var pts []geom.Point
	for {
		pts = mobility.UniformPoints(arena, n, rng)
		if graph.UnitDisk(pts, normalRange).Connected() {
			break
		}
	}

	protocols := []topology.Protocol{
		topology.MST{Range: normalRange},
		topology.RNG{},
		topology.Gabriel{},
		topology.SPT{Alpha: 2, Range: normalRange},
		topology.None{},
	}

	fmt.Println("geographic routing over controlled topologies (100 nodes, all pairs sampled)")
	fmt.Printf("%-8s %8s %10s %10s %12s\n", "topology", "degree", "greedy ok", "GFG ok", "GFG stretch")
	for _, p := range protocols {
		sel := snapshot.Selections(pts, p, normalRange)
		lg := snapshot.Logical(pts, sel)
		adj := make([][]int, n)
		deg := 0
		for u := 0; u < n; u++ {
			for _, h := range lg.Neighbors(u) {
				adj[u] = append(adj[u], h.To)
			}
			deg += len(adj[u])
		}
		r, err := route.New(pts, adj)
		if err != nil {
			panic(err)
		}
		pairRng := xrand.New(3)
		greedyOK, gfgOK, trials := 0, 0, 0
		stretchSum, stretchN := 0.0, 0
		for t := 0; t < 500; t++ {
			src, dst := pairRng.Intn(n), pairRng.Intn(n)
			if src == dst {
				continue
			}
			trials++
			if _, ok := r.Greedy(src, dst); ok {
				greedyOK++
			}
			if path, ok := r.GFG(src, dst); ok {
				gfgOK++
				stretchSum += r.Stretch(path)
				stretchN++
			}
		}
		meanStretch := 0.0
		if stretchN > 0 {
			meanStretch = stretchSum / float64(stretchN)
		}
		fmt.Printf("%-8s %8.2f %9.1f%% %9.1f%% %12.2f\n",
			p.Name(), float64(deg)/n,
			100*float64(greedyOK)/float64(trials),
			100*float64(gfgOK)/float64(trials),
			meanStretch)
	}
	fmt.Println("\nGFG delivers 100% on the planar RNG/GG topologies — sparse power-saving")
	fmt.Println("topologies remain fully routable; non-planar ones (SPT, none) may not")
	fmt.Println("recover from every local minimum.")
}
