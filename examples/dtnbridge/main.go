// DTN bridge: the paper's future-work experiment (§6) — combine
// mobility-TOLERANT management (topology control + buffer zones, instant
// delivery inside each connected component) with mobility-ASSISTED
// management (epidemic store-carry-forward, carriers physically bridge
// partitions) to achieve weak connectivity with bounded delay: the network
// snapshot is never fully connected, yet messages arrive within a deadline.
package main

import (
	"fmt"

	"mstc/internal/geom"
	"mstc/internal/manet"
	"mstc/internal/mobility"
	"mstc/internal/topology"
	"mstc/internal/xrand"
)

func main() {
	const (
		n        = 100
		speed    = 20.0 // m/s average
		duration = 60.0
	)
	lo, hi := mobility.SpeedSetdest(speed)
	model, err := mobility.NewRandomWaypoint(geom.Square(900), mobility.WaypointConfig{
		N: n, SpeedMin: lo, SpeedMax: hi, Horizon: duration,
	}, xrand.New(11))
	if err != nil {
		panic(err)
	}

	// Instantaneous flooding on MST: the sparsest topology, the worst
	// snapshot connectivity under mobility.
	flood, err := manet.NewNetwork(model, manet.Config{
		Protocol: topology.MST{Range: 250}, FloodRate: 10, Seed: 5,
	})
	if err != nil {
		panic(err)
	}
	fres := flood.Run(duration)
	fmt.Printf("MST, %g m/s average speed, 100 nodes\n\n", speed)
	fmt.Printf("instantaneous flooding delivery: %.3f  (snapshot connectivity is poor)\n\n",
		fres.Connectivity)

	fmt.Println("store-carry-forward over the same effective topology:")
	fmt.Printf("%-12s %-12s %s\n", "deadline (s)", "delivered", "mean delay (s)")
	for _, window := range []float64{1, 2, 5, 10, 20} {
		nw, err := manet.NewNetwork(model, manet.Config{
			Protocol: topology.MST{Range: 250}, Seed: 5,
		})
		if err != nil {
			panic(err)
		}
		res, err := nw.RunEpidemic(duration, manet.EpidemicConfig{
			Window: window, Messages: 6,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-12g %-12.3f %.2f\n", window, res.Delivered, res.MeanDelay)
	}
	fmt.Println("\nmobility itself carries messages across partitions: a deadline of a")
	fmt.Println("few tens of seconds buys near-complete delivery on a topology whose")
	fmt.Println("snapshots are badly disconnected.")
}
