package mstc

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§5), plus ablations over the design choices called out in
// DESIGN.md. Each bench runs a scaled-down version of the experiment
// (1 repetition, 5 simulated seconds) so `go test -bench=.` completes in
// minutes; pass -benchtime=1x and raise the scale constants for
// paper-fidelity numbers, or use cmd/paperfig, which defaults to the
// paper's 20 x 100 s configuration.
//
// Connectivity results are attached to the benchmark output as custom
// metrics (conn/ratio), so the shape of each figure is visible directly in
// the bench log.

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"mstc/internal/channel"
	"mstc/internal/experiment"
	"mstc/internal/geom"
	"mstc/internal/manet"
	"mstc/internal/mobility"
	"mstc/internal/radio"
	"mstc/internal/route"
	"mstc/internal/snapshot"
	"mstc/internal/spatial"
	"mstc/internal/topology"
	"mstc/internal/traffic"
	"mstc/internal/xrand"
)

// benchScale keeps every figure bench short; cmd/paperfig runs full scale.
const (
	benchDuration = 5.0
	benchReps     = 1
)

func benchOptions() experiment.Options {
	o := experiment.DefaultOptions()
	o.Reps = benchReps
	o.Duration = benchDuration
	o.Speeds = []float64{1, 40, 160}
	o.Buffers = []float64{0, 10, 100}
	return o
}

// BenchmarkTable1 regenerates Table 1 (baseline transmission range and node
// degree).
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		tab, err := experiment.Table1(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) != 4 {
			b.Fatalf("table rows = %d", len(tab.Rows))
		}
	}
}

// BenchmarkFig6 regenerates Figure 6 (baseline connectivity vs speed).
func BenchmarkFig6(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	var fig experiment.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiment.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig.Series)
}

// BenchmarkFig7 regenerates Figure 7 (connectivity vs speed per buffer
// width, all four protocols).
func BenchmarkFig7(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		figs, err := experiment.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) != 4 {
			b.Fatalf("figures = %d", len(figs))
		}
	}
}

// BenchmarkFig8 regenerates Figure 8 (range and physical degree vs buffer
// width).
func BenchmarkFig8(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	var fa experiment.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fa, _, err = experiment.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(fa.Series) > 0 {
		last := fa.Series[len(fa.Series)-1]
		b.ReportMetric(last.Y[len(last.Y)-1], "m_maxrange")
	}
}

// BenchmarkFig9 regenerates Figure 9 (view synchronization).
func BenchmarkFig9(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		figs, err := experiment.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) != 4 {
			b.Fatalf("figures = %d", len(figs))
		}
	}
}

// BenchmarkFig10 regenerates Figure 10 (physical neighbors).
func BenchmarkFig10(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		figs, err := experiment.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(figs) != 4 {
			b.Fatalf("figures = %d", len(figs))
		}
	}
}

func reportSeries(b *testing.B, series []experiment.Series) {
	for _, s := range series {
		if len(s.Y) > 0 {
			b.ReportMetric(s.Y[0], "conn_"+s.Name+"_lo")
			b.ReportMetric(s.Y[len(s.Y)-1], "conn_"+s.Name+"_hi")
		}
	}
}

// runOnce executes a single simulation for the ablation benches.
func runOnce(b *testing.B, speed float64, cfg manet.Config) manet.Result {
	b.Helper()
	lo, hi := mobility.SpeedSetdest(speed)
	model, err := mobility.NewRandomWaypoint(geom.Square(900), mobility.WaypointConfig{
		N: 100, SpeedMin: lo, SpeedMax: hi, Horizon: benchDuration,
	}, xrand.New(42))
	if err != nil {
		b.Fatal(err)
	}
	nw, err := manet.NewNetwork(model, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return nw.Run(benchDuration)
}

// BenchmarkSingleRun measures one full 100-node simulation (the unit of
// every experiment).
func BenchmarkSingleRun(b *testing.B) {
	b.ReportAllocs()
	var res manet.Result
	for i := 0; i < b.N; i++ {
		res = runOnce(b, 40, manet.Config{
			Protocol: topology.RNG{}, FloodRate: 10, Seed: uint64(i),
		})
	}
	b.ReportMetric(res.Connectivity, "conn/ratio")
}

// BenchmarkSingleRunParallel is BenchmarkSingleRun on the region-parallel
// engine (2x2 domains) across worker counts. Results are bit-identical to
// the serial engine; the sub-benchmarks expose the window/barrier overhead
// at 1 worker and the scaling headroom beyond it (only realizable with
// more than one CPU — see README's benchmark trajectory notes).
func BenchmarkSingleRunParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			var res manet.Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, 40, manet.Config{
					Protocol: topology.RNG{}, FloodRate: 10, Seed: uint64(i),
					Domains: 2, ParallelWorkers: workers,
				})
			}
			b.ReportMetric(res.Connectivity, "conn/ratio")
		})
	}
}

// BenchmarkSingleRunLarge scales the single run to 1 000 and 10 000 nodes
// at the paper's density (the arena side grows with sqrt(n), holding the
// ~24-neighbor degree of the 100-node/900 m baseline) on the region-parallel
// engine over 2x2 and 4x4 domain grids. This is the regime the engine
// exists for: per-window work dominates barrier overhead, so the grids
// separate. The 10k runs use a shorter horizon to keep the 1x smoke pass
// affordable; relative grid timings are what the bench tracks.
func BenchmarkSingleRunLarge(b *testing.B) {
	lo, hi := mobility.SpeedSetdest(40)
	for _, n := range []int{1000, 10000} {
		side := 900 * math.Sqrt(float64(n)/100)
		dur := benchDuration
		if n >= 10000 {
			dur = 1.5
		}
		model, err := mobility.NewRandomWaypoint(geom.Square(side), mobility.WaypointConfig{
			N: n, SpeedMin: lo, SpeedMax: hi, Horizon: dur,
		}, xrand.New(42))
		if err != nil {
			b.Fatal(err)
		}
		for _, g := range []int{2, 4} {
			b.Run(fmt.Sprintf("n=%d/grid=%dx%d", n, g, g), func(b *testing.B) {
				b.ReportAllocs()
				var res manet.Result
				for i := 0; i < b.N; i++ {
					nw, err := manet.NewNetwork(model, manet.Config{
						Protocol: topology.RNG{}, FloodRate: 10, Seed: uint64(i),
						Domains: g, ParallelWorkers: runtime.GOMAXPROCS(0),
					})
					if err != nil {
						b.Fatal(err)
					}
					res = nw.Run(dur)
				}
				b.ReportMetric(res.Connectivity, "conn/ratio")
			})
		}
	}
}

// BenchmarkResolveAll measures the batched position resolution sweep that
// feeds every synchronization window: one flat pass over all nodes versus
// the equivalent scattered per-node queries.
func BenchmarkResolveAll(b *testing.B) {
	lo, hi := mobility.SpeedSetdest(40)
	model, err := mobility.NewRandomWaypoint(geom.Square(900), mobility.WaypointConfig{
		N: 100, SpeedMin: lo, SpeedMax: hi, Horizon: 100,
	}, xrand.New(42))
	if err != nil {
		b.Fatal(err)
	}
	b.Run("batched", func(b *testing.B) {
		b.ReportAllocs()
		cur := mobility.NewCursor(model)
		dst := make([]geom.Point, 0, model.N())
		t := 0.0
		for i := 0; i < b.N; i++ {
			dst = cur.ResolveAllInto(dst[:0], t)
			t += 0.25
			if t > 100 {
				t = 0
			}
		}
	})
	b.Run("scattered", func(b *testing.B) {
		b.ReportAllocs()
		cur := mobility.NewCursor(model)
		dst := make([]geom.Point, 0, model.N())
		t := 0.0
		for i := 0; i < b.N; i++ {
			dst = dst[:0]
			for id := 0; id < model.N(); id++ {
				dst = append(dst, cur.PositionAt(id, t))
			}
			t += 0.25
			if t > 100 {
				t = 0
			}
		}
	})
}

// BenchmarkSingleRunFaulty is BenchmarkSingleRun over a non-ideal channel
// (bursty loss + delayed delivery + churn): the cost of the fault-injection
// path relative to the ideal one, with the same mobility and protocol.
func BenchmarkSingleRunFaulty(b *testing.B) {
	b.ReportAllocs()
	var res manet.Result
	for i := 0; i < b.N; i++ {
		res = runOnce(b, 40, manet.Config{
			Protocol: topology.RNG{}, FloodRate: 10, Seed: uint64(i),
			Channel: channel.Config{
				Loss:  channel.LossConfig{Model: channel.GilbertElliott, Rate: 0.2},
				Delay: channel.DelayConfig{Max: 0.05},
				Churn: channel.ChurnConfig{MeanUp: 20, MeanDown: 2},
			},
		})
	}
	b.ReportMetric(res.Connectivity, "conn/ratio")
}

// BenchmarkAblationBufferWidth sweeps the buffer width finer than the
// paper's {1, 10, 100} to locate the knee of the connectivity/power
// trade-off.
func BenchmarkAblationBufferWidth(b *testing.B) {
	b.ReportAllocs()
	for _, buf := range []float64{0, 1, 3, 10, 30, 100} {
		b.Run(fmt.Sprintf("buf=%gm", buf), func(b *testing.B) {
			b.ReportAllocs()
			var res manet.Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, 40, manet.Config{
					Protocol: topology.RNG{}, FloodRate: 10, Seed: uint64(i),
					Mech: manet.Mechanisms{Buffer: buf, ViewSync: true},
				})
			}
			b.ReportMetric(res.Connectivity, "conn/ratio")
			b.ReportMetric(res.AvgTxRange, "m/range")
		})
	}
}

// BenchmarkAblationWeakK sweeps the number of stored "Hello" versions for
// weak-consistency selection (Theorem 3 says 2–3 suffice).
func BenchmarkAblationWeakK(b *testing.B) {
	b.ReportAllocs()
	for _, k := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			var res manet.Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, 20, manet.Config{
					Weak: topology.WeakRNG{}, FloodRate: 10, Seed: uint64(i),
					Mech: manet.Mechanisms{WeakK: k, Buffer: 10},
				})
			}
			b.ReportMetric(res.Connectivity, "conn/ratio")
			b.ReportMetric(res.AvgLogicalDegree, "deg/logical")
		})
	}
}

// BenchmarkAblationHelloInterval sweeps the beaconing rate: shorter
// intervals cannot fix inconsistency (§3.2) but do reduce staleness.
func BenchmarkAblationHelloInterval(b *testing.B) {
	b.ReportAllocs()
	for _, iv := range []float64{0.5, 1.0, 2.0} {
		b.Run(fmt.Sprintf("interval=%gs", iv), func(b *testing.B) {
			b.ReportAllocs()
			var res manet.Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, 40, manet.Config{
					Protocol: topology.RNG{}, FloodRate: 10, Seed: uint64(i),
					HelloMin: iv * 0.75, HelloMax: iv * 1.25,
					HelloExpiry: 2.5 * iv,
					Mech:        manet.Mechanisms{Buffer: 10},
				})
			}
			b.ReportMetric(res.Connectivity, "conn/ratio")
		})
	}
}

// BenchmarkAblationCollisionMAC compares the ideal MAC against the
// collision model at increasing airtimes (the paper's future-work
// realism knob).
func BenchmarkAblationCollisionMAC(b *testing.B) {
	b.ReportAllocs()
	for _, txDur := range []float64{0, 0.0005, 0.001, 0.005} {
		b.Run(fmt.Sprintf("airtime=%gs", txDur), func(b *testing.B) {
			b.ReportAllocs()
			var res manet.Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, 20, manet.Config{
					Protocol: topology.RNG{}, FloodRate: 10, Seed: uint64(i),
					Mech:  manet.Mechanisms{Buffer: 10, ViewSync: true},
					Radio: radio.Config{TxDuration: txDur},
				})
			}
			b.ReportMetric(res.Connectivity, "conn/ratio")
		})
	}
}

// BenchmarkEpidemic measures the store-carry-forward dissemination layer.
func BenchmarkEpidemic(b *testing.B) {
	b.ReportAllocs()
	lo, hi := mobility.SpeedSetdest(20)
	model, err := mobility.NewRandomWaypoint(geom.Square(900), mobility.WaypointConfig{
		N: 100, SpeedMin: lo, SpeedMax: hi, Horizon: 20,
	}, xrand.New(42))
	if err != nil {
		b.Fatal(err)
	}
	var res manet.EpidemicResult
	for i := 0; i < b.N; i++ {
		nw, err := manet.NewNetwork(model, manet.Config{
			Protocol: topology.MST{Range: 250}, Seed: uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err = nw.RunEpidemic(20, manet.EpidemicConfig{Window: 10, Messages: 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Delivered, "delivered/ratio")
}

// BenchmarkAblationSelfPruning measures the forwarding-overhead reduction
// of neighborhood-aware self-pruning at two densities.
func BenchmarkAblationSelfPruning(b *testing.B) {
	b.ReportAllocs()
	for _, prune := range []bool{false, true} {
		b.Run(fmt.Sprintf("prune=%v", prune), func(b *testing.B) {
			b.ReportAllocs()
			var res manet.Result
			for i := 0; i < b.N; i++ {
				res = runOnce(b, 1, manet.Config{
					Protocol: topology.None{}, FloodRate: 10, Seed: uint64(i),
					Mech: manet.Mechanisms{SelfPruning: prune},
				})
			}
			b.ReportMetric(float64(res.DataTx), "tx/run")
			b.ReportMetric(res.Connectivity, "conn/ratio")
		})
	}
}

// BenchmarkGeoRouting measures greedy and GFG routing over a Gabriel
// topology snapshot.
func BenchmarkGeoRouting(b *testing.B) {
	b.ReportAllocs()
	pts := mobility.UniformPoints(geom.Square(900), 100, xrand.New(1))
	sel := snapshot.Selections(pts, topology.Gabriel{}, 250)
	lg := snapshot.Logical(pts, sel)
	adj := make([][]int, len(pts))
	for u := range adj {
		for _, h := range lg.Neighbors(u) {
			adj[u] = append(adj[u], h.To)
		}
	}
	r, err := route.New(pts, adj)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("greedy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r.Greedy(i%100, (i*37+13)%100)
		}
	})
	b.Run("gfg", func(b *testing.B) {
		b.ReportAllocs()
		delivered := 0
		for i := 0; i < b.N; i++ {
			if _, ok := r.GFG(i%100, (i*37+13)%100); ok {
				delivered++
			}
		}
		b.ReportMetric(float64(delivered)/float64(b.N), "delivered/ratio")
	})
}

// BenchmarkTrafficRun measures a full routed-traffic run (internal/traffic
// over the controlled topology) per mode: AODV pays discovery floods on
// demand, OLSR a periodic TC budget. Delivery ratio rides along as a
// custom metric so workload drift is visible next to the timing.
func BenchmarkTrafficRun(b *testing.B) {
	for _, mode := range []traffic.Mode{traffic.AODV, traffic.OLSR} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			var res manet.Result
			for i := 0; i < b.N; i++ {
				cfg := manet.Config{
					Protocol: topology.RNG{}, Seed: uint64(i),
					Mech: manet.Mechanisms{Buffer: 10, ViewSync: true},
				}
				cfg.Traffic = traffic.Config{Mode: mode, Flows: 8, Rate: 2}
				res = runOnce(b, 20, cfg)
			}
			b.ReportMetric(res.Traffic.DeliveryRatio, "pdr/ratio")
		})
	}
}

// BenchmarkAblationGridCell measures the spatial index's cell-size
// trade-off on the radio's hot query.
func BenchmarkAblationGridCell(b *testing.B) {
	b.ReportAllocs()
	pts := mobility.UniformPoints(geom.Square(900), 100, xrand.New(1))
	for _, cell := range []float64{25, 50, 125, 250, 500} {
		b.Run(fmt.Sprintf("cell=%gm", cell), func(b *testing.B) {
			b.ReportAllocs()
			ix := spatial.MustIndex(geom.Square(900), cell)
			ix.Build(pts)
			buf := make([]int, 0, 64)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = ix.Within(pts[i%100], 250, buf[:0])
			}
		})
	}
}

// BenchmarkSweepWorkers measures how a protocol-by-speed Sweep scales with
// the worker-pool size, from sequential up to GOMAXPROCS (doubling in
// between). Tasks are handed out through a buffered channel, so the curve
// exposes scheduler hand-off overhead rather than channel-capacity stalls.
func BenchmarkSweepWorkers(b *testing.B) {
	o := benchOptions()
	o.Reps = 2
	protocols := []string{"RNG", "MST", "SPT-2"}
	speeds := []float64{1, 160}
	maxW := runtime.GOMAXPROCS(0)
	workers := []int{1}
	for w := 2; w < maxW; w *= 2 {
		workers = append(workers, w)
	}
	if maxW > 1 {
		workers = append(workers, maxW)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			o := o
			o.Workers = w
			for i := 0; i < b.N; i++ {
				if _, err := experiment.Sweep(o, protocols, speeds, []manet.Mechanisms{{}}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelRuns compares sequential and parallel execution of the
// same 8-run sweep (the experiment package's worker pool).
func BenchmarkParallelRuns(b *testing.B) {
	b.ReportAllocs()
	o := benchOptions()
	o.Reps = 4
	tasks := make([]experiment.Run, 0, 8)
	for rep := 0; rep < 4; rep++ {
		tasks = append(tasks,
			experiment.Run{Protocol: "RNG", Speed: 40, Rep: rep},
			experiment.Run{Protocol: "MST", Speed: 40, Rep: rep})
	}
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			o := o
			o.Workers = workers
			for i := 0; i < b.N; i++ {
				if _, err := experiment.Execute(o, tasks); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
